#include "tensor/arena.hpp"

#include "common/error.hpp"

namespace dnnspmv {

Tensor& TensorArena::tensor(const void* owner, int slot) {
  return tensors_[Key{owner, slot}];
}

float* TensorArena::floats(const void* owner, int slot, std::int64_t size) {
  DNNSPMV_CHECK(size >= 0);
  std::vector<float>& buf = floats_[Key{owner, slot}];
  if (buf.size() < static_cast<std::size_t>(size))
    buf.resize(static_cast<std::size_t>(size));
  return buf.data();
}

std::int32_t* TensorArena::ints(const void* owner, int slot,
                                std::int64_t size) {
  DNNSPMV_CHECK(size >= 0);
  std::vector<std::int32_t>& buf = ints_[Key{owner, slot}];
  if (buf.size() < static_cast<std::size_t>(size))
    buf.resize(static_cast<std::size_t>(size));
  return buf.data();
}

std::size_t TensorArena::bytes_held() const {
  std::size_t total = 0;
  for (const auto& [key, t] : tensors_)
    total += static_cast<std::size_t>(t.size()) * sizeof(float);
  for (const auto& [key, buf] : floats_) total += buf.size() * sizeof(float);
  for (const auto& [key, buf] : ints_)
    total += buf.size() * sizeof(std::int32_t);
  return total;
}

void TensorArena::clear() {
  tensors_.clear();
  floats_.clear();
  ints_.clear();
}

TensorArena& thread_arena() {
  static thread_local TensorArena arena;
  return arena;
}

}  // namespace dnnspmv
