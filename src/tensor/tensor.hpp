// Dense row-major float tensor used by the neural-network stack.
//
// Deliberately minimal: contiguous storage, an explicit shape vector, and
// the handful of element-wise helpers the NN layers need. Layout convention
// for 4-D activations is NCHW (batch, channels, height, width).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dnnspmv {

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::int64_t> shape) { resize(std::move(shape)); }

  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  void resize(std::vector<std::int64_t> shape);

  /// Like resize, but when the tensor already has exactly `shape` the data
  /// is left untouched (no zero-fill pass). For producers that overwrite
  /// every element — keeps steady-state forward passes allocation- and
  /// memset-free.
  void ensure(std::vector<std::int64_t> shape);

  /// ensure({r, c}) without materializing a shape vector at the call site —
  /// the warm-path no-op costs two integer compares and zero allocations
  /// (the vector overload allocates its argument even when nothing
  /// changes). The streaming representation builder's steady state is built
  /// on this.
  void ensure2(std::int64_t r, std::int64_t c) {
    if (shape_.size() == 2 && shape_[0] == r && shape_[1] == c) return;
    resize({r, c});
  }

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t rank() const { return shape_.size(); }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D indexed access (for matrices); bounds unchecked in release paths.
  float& at2(std::int64_t r, std::int64_t c) { return data_[idx2(r, c)]; }
  float at2(std::int64_t r, std::int64_t c) const { return data_[idx2(r, c)]; }

  /// 4-D NCHW access.
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[idx4(n, c, h, w)];
  }
  float at4(std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w) const {
    return data_[idx4(n, c, h, w)];
  }

  /// Reinterpret with a new shape of identical element count.
  void reshape(std::vector<std::int64_t> shape);

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0f); }

  /// Fill with N(0, stddev) samples.
  void fill_normal(Rng& rng, float stddev);

  /// Fill with U(lo, hi) samples.
  void fill_uniform(Rng& rng, float lo, float hi);

  /// this += other (shapes must match).
  void add_(const Tensor& other);

  /// this *= s.
  void scale_(float s);

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Sum of all elements (double accumulator).
  double sum() const;

  /// Maximum absolute element; 0 for empty tensors.
  float max_abs() const;

 private:
  std::size_t idx2(std::int64_t r, std::int64_t c) const {
    return static_cast<std::size_t>(r * shape_[1] + c);
  }
  std::size_t idx4(std::int64_t n, std::int64_t c, std::int64_t h,
                   std::int64_t w) const {
    return static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w);
  }

  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace dnnspmv
