#include "perf/platform.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hyb.hpp"
#include "sparse/spmv.hpp"

namespace dnnspmv {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Deterministic per-(matrix, platform, format) jitter in
/// [1-noise, 1+noise]: stands in for real measurement variance so labels
/// near format crossovers flip occasionally, as they do in measured data.
double noise_factor(const Csr& a, std::uint64_t seed, int format_id,
                    double noise) {
  std::uint64_t h = seed * 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 31;
  };
  mix(static_cast<std::uint64_t>(a.rows));
  mix(static_cast<std::uint64_t>(a.cols) << 20);
  mix(static_cast<std::uint64_t>(a.nnz()) << 7);
  mix(static_cast<std::uint64_t>(format_id + 1) << 13);
  for (std::int64_t k = 0; k < std::min<std::int64_t>(a.nnz(), 8); ++k)
    mix(static_cast<std::uint64_t>(a.idx[k * std::max<std::int64_t>(
                                       1, a.nnz() / 8)]));
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  return 1.0 + noise * (2.0 * u - 1.0);
}

/// Shared roofline context derived from one stats pass.
struct CostCtx {
  MatrixStats s;
  double bw = 0.0;          // bytes/second
  double flops = 0.0;       // peak flops/second across cores
  bool x_fits = false;      // does the x vector stay cache-resident?
  double scatter = 0.0;     // fraction of x gathers that miss cache lines
  double row_imb = 1.0;     // static-schedule chunk imbalance (>= 1)
};

/// Makespan inflation of a static row partition into `cores` chunks:
/// max(chunk nnz) / mean(chunk nnz). A purely *spatial* quantity — two
/// matrices with identical scalar statistics can differ here, which is
/// exactly the information the paper's histogram representation preserves
/// and aggregate features lose (§4).
double static_row_imbalance(const Csr& a, int cores) {
  if (a.nnz() == 0 || a.rows == 0 || cores <= 1) return 1.0;
  const index_t chunk_rows = (a.rows + cores - 1) / cores;
  std::int64_t max_chunk = 0;
  for (index_t r0 = 0; r0 < a.rows; r0 += chunk_rows) {
    const index_t r1 = std::min<index_t>(a.rows, r0 + chunk_rows);
    max_chunk = std::max(max_chunk, a.ptr[r1] - a.ptr[r0]);
  }
  const double mean_chunk =
      static_cast<double>(a.nnz()) /
      std::ceil(static_cast<double>(a.rows) / chunk_rows);
  return std::max(1.0, static_cast<double>(max_chunk) / mean_chunk);
}

CostCtx make_ctx(const Csr& a, const MachineParams& p) {
  CostCtx c;
  c.s = compute_stats(a);
  c.bw = p.bandwidth_gbps * 1e9;
  c.flops = p.freq_ghz * 1e9 * p.cores * p.flops_per_cycle;
  const double cache_bytes = p.cache_mb * 1e6;
  c.x_fits = 8.0 * static_cast<double>(a.cols) <= 0.5 * cache_bytes;
  // Mean byte distance between consecutive gathers within a row, vs the
  // 64-byte line.
  const double gap_bytes = c.s.col_gap * static_cast<double>(a.cols) * 8.0;
  c.scatter = std::min(1.0, gap_bytes / 64.0);
  c.row_imb = static_row_imbalance(a, p.cores);
  return c;
}

double roofline(double traffic_bytes, double eff_flops, const CostCtx& c,
                double bw_eff = 1.0, double compute_eff = 1.0) {
  const double t_mem = traffic_bytes / (c.bw * bw_eff);
  const double t_cmp = eff_flops / (c.flops * compute_eff);
  return std::max(t_mem, t_cmp);
}

double x_gather_traffic(const CostCtx& c, double gathers) {
  // A cache-resident x costs nothing after warmup (SpMV is timed over
  // repeated iterations); otherwise each scattered gather pulls a line.
  return c.x_fits ? 0.0 : 8.0 * gathers * c.scatter;
}

// ---------------------------------------------------------------------------
// CPU model (SMATLib set: COO, CSR, DIA, ELL) — paper Tables 1+2 machines.
// ---------------------------------------------------------------------------

class AnalyticCpu final : public Platform {
 public:
  explicit AnalyticCpu(MachineParams p) : p_(std::move(p)) {}

  std::string name() const override { return p_.name; }
  const std::vector<Format>& formats() const override {
    return cpu_formats();
  }

  std::vector<double> spmv_times(const Csr& a) const override {
    const CostCtx c = make_ctx(a, p_);
    const auto rows = static_cast<double>(c.s.rows);
    const auto nnz = static_cast<double>(c.s.nnz);
    std::vector<double> t;
    t.reserve(4);

    // Per-format bandwidth saturation: streaming kernels (DIA, ELL) reach
    // peak bandwidth with few cores thanks to hardware prefetch; gather-
    // heavy kernels (CSR) and reduction-heavy ones (COO) need many cores.
    // This is the main source of *architectural* label divergence between
    // the 24-core Xeon and the 4-core A8 (paper §6 relies on it).
    const auto sat = [&](double cores_needed) {
      return std::min(1.0, static_cast<double>(p_.cores) / cores_needed);
    };

    // COO: 16 B/nnz storage, touched-row y read-modify-write, and a
    // segmented-reduction efficiency hit on multicore.
    {
      const double touched = std::min(rows, nnz);
      const double traffic =
          16.0 * nnz + 16.0 * touched + x_gather_traffic(c, nnz);
      t.push_back(roofline(traffic, 2.0 * nnz, c, 0.75 * sat(10.0),
                           /*compute_eff=*/0.25));
    }
    // CSR: 12 B/nnz + 8 B/row ptr + 8 B/row y. Rows are statically
    // partitioned, so spatially clustered nonzeros inflate the makespan —
    // COO (nnz-partitioned) and DIA (uniform per-row work) are immune.
    // Mild clustering is absorbed by chunk interleaving; past ~1.3x the
    // straggler chunk dominates, so the penalty is thresholded.
    const double imb = 1.0 + 0.9 * std::max(0.0, c.row_imb - 1.3);
    {
      const double traffic =
          12.0 * nnz + 16.0 * rows + x_gather_traffic(c, nnz);
      t.push_back(roofline(traffic, 2.0 * nnz, c, 1.0 * sat(8.0), 0.35) *
                  imb);
    }
    // DIA: streams ndiags dense arrays; x access is contiguous per
    // diagonal (no gather), but every padded slot costs traffic+flops.
    {
      const double padded = static_cast<double>(c.s.ndiags) * rows;
      const bool feasible =
          c.s.nnz > 0 && padded <= kDiaMaxFill * nnz;
      if (!feasible) {
        t.push_back(kInf);
      } else {
        const double xy_pass = c.x_fits ? 1.0 : 2.0;
        const double traffic = 8.0 * padded * xy_pass + 8.0 * rows;
        t.push_back(roofline(traffic, 2.0 * padded, c, 1.1 * sat(3.0), 1.0));
      }
    }
    // ELL: 12 B per padded slot, column-major streaming, vectorizable.
    {
      const double padded = static_cast<double>(c.s.row_nnz_max) * rows;
      const bool feasible = c.s.nnz > 0 && padded <= kEllMaxFill * nnz;
      if (!feasible) {
        t.push_back(kInf);
      } else {
        const double traffic =
            12.0 * padded + 8.0 * rows + x_gather_traffic(c, padded);
        // ELL work per row is uniform (fixed width): immune to nonzero
        // clustering, like DIA.
        t.push_back(roofline(traffic, 2.0 * padded, c, 1.12 * sat(5.0),
                             0.5));
      }
    }
    for (std::size_t i = 0; i < t.size(); ++i)
      if (std::isfinite(t[i]))
        t[i] *= noise_factor(a, p_.noise_seed, static_cast<int>(i), p_.noise);
    return t;
  }

 private:
  MachineParams p_;
};

// ---------------------------------------------------------------------------
// GPU model (cuSPARSE + CSR5 set) — warp-centric effects: coalescing,
// row-imbalance for scalar-row CSR, atomics for COO/HYB tails, and the
// nonzero-balanced execution of CSR5 (paper Table 3).
// ---------------------------------------------------------------------------

class AnalyticGpu final : public Platform {
 public:
  explicit AnalyticGpu(MachineParams p) : p_(std::move(p)) {}

  std::string name() const override { return p_.name; }
  const std::vector<Format>& formats() const override {
    return gpu_formats();
  }

  std::vector<double> spmv_times(const Csr& a) const override {
    const CostCtx c = make_ctx(a, p_);
    const auto rows = static_cast<double>(c.s.rows);
    const auto nnz = static_cast<double>(c.s.nnz);
    // Row-length skew: the dominant effect for one-thread-per-row kernels.
    const double skew = std::min(c.s.max_over_mean, 32.0);
    const double kLaunch = 2e-7;  // event-timed kernels: launch mostly amortized
    std::vector<double> t;
    t.reserve(6);

    // CSR (vector-row kernel): mostly coalesced, but warps stall on the
    // longest row when row lengths are skewed.
    {
      const double traffic =
          12.0 * nnz + 16.0 * rows + x_gather_traffic(c, nnz);
      const double imbalance = 0.9 + 0.1 * skew;
      t.push_back(roofline(traffic, 2.0 * nnz, c, 1.0, 0.5) * imbalance +
                  kLaunch);
    }
    // ELL: fully coalesced column-major streams; pays for padding.
    {
      const double padded = static_cast<double>(c.s.row_nnz_max) * rows;
      const bool feasible = c.s.nnz > 0 && padded <= kEllMaxFill * nnz;
      if (!feasible) {
        t.push_back(kInf);
      } else {
        const double traffic =
            12.0 * padded + 8.0 * rows + x_gather_traffic(c, padded);
        t.push_back(roofline(traffic, 2.0 * padded, c, 1.25, 1.0) + kLaunch);
      }
    }
    // HYB: ELL slab at the 67th-percentile width + atomic COO tail (the
    // split is computed exactly in compute_stats, matching hyb_from_csr).
    {
      const double ell_padded = static_cast<double>(c.s.hyb_width) * rows;
      const double tail = static_cast<double>(c.s.hyb_tail);
      const double traffic = 12.0 * ell_padded + 8.0 * rows +
                             16.0 * tail * 2.2 +  // serialized atomics
                             x_gather_traffic(c, ell_padded + tail);
      // The 1.06 factor is HYB's structural overhead over a pure ELL slab
      // (row-length lookup + tail bookkeeping) — without it HYB and ELL
      // tie exactly on tail-free matrices and noise picks the winner.
      t.push_back(roofline(traffic, 2.0 * (ell_padded + tail), c, 1.12, 0.9) *
                      1.06 +
                  kLaunch);
    }
    // BSR 4×4: per-block index amortization and ×4 x-reuse; pays for
    // zero-fill inside sparse blocks.
    {
      const double blocks = static_cast<double>(c.s.bsr_blocks);
      const double traffic = 132.0 * blocks + 8.0 * rows +
                             x_gather_traffic(c, 4.0 * blocks);
      t.push_back(roofline(traffic, 32.0 * blocks, c, 1.3, 1.0) + kLaunch);
    }
    // CSR5-lite: nonzero-balanced tiles — immune to skew, but pays a
    // segmented-sum overhead per nonzero.
    {
      const double traffic =
          12.0 * nnz + 16.0 * rows + x_gather_traffic(c, nnz);
      t.push_back(roofline(traffic * 1.25, 2.4 * nnz, c, 1.1, 0.9) +
                  kLaunch);
    }
    // COO: one atomic per nonzero plus a y-zeroing pre-kernel — never
    // competitive (paper Table 3: COO never wins on the GPU).
    {
      const double traffic =
          16.0 * nnz * 3.0 + 16.0 * rows + x_gather_traffic(c, nnz);
      t.push_back(roofline(traffic, 2.0 * nnz, c, 0.8, 0.3) +
                  2.5 * kLaunch);
    }
    for (std::size_t i = 0; i < t.size(); ++i)
      if (std::isfinite(t[i]))
        t[i] *= noise_factor(a, p_.noise_seed, static_cast<int>(i), p_.noise);
    return t;
  }

 private:
  MachineParams p_;
};

// ---------------------------------------------------------------------------
// Measured platform: the host machine running this library's kernels.
// ---------------------------------------------------------------------------

class Measured final : public Platform {
 public:
  Measured(std::vector<Format> formats, int reps)
      : formats_(std::move(formats)), reps_(reps) {
    DNNSPMV_CHECK(!formats_.empty() && reps_ >= 1);
  }

  std::string name() const override { return "host-measured"; }
  const std::vector<Format>& formats() const override { return formats_; }

  std::vector<double> spmv_times(const Csr& a) const override {
    std::vector<double> times;
    times.reserve(formats_.size());
    std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
    for (Format f : formats_) {
      auto m = AnyFormatMatrix::convert(a, f);
      if (!m) {
        times.push_back(kInf);
        continue;
      }
      times.push_back(time_kernel([&] { m->spmv(x, y); }, 1, reps_));
    }
    return times;
  }

 private:
  std::vector<Format> formats_;
  int reps_;
};

}  // namespace

MachineParams intel_xeon_params() {
  return {"intel-xeon-e5", 103.0, 2.4, 24, 30.0, 8.0, 11, 0.04};
}

MachineParams amd_a8_params() {
  return {"amd-a8-7600", 25.6, 3.1, 4, 4.0, 8.0, 23, 0.04};
}

MachineParams titan_x_params() {
  return {"nvidia-titan-x", 168.0, 1.08, 3072, 3.0, 2.0, 37, 0.05};
}

std::unique_ptr<Platform> make_analytic_cpu(const MachineParams& p) {
  return std::make_unique<AnalyticCpu>(p);
}

std::unique_ptr<Platform> make_analytic_gpu(const MachineParams& p) {
  return std::make_unique<AnalyticGpu>(p);
}

std::unique_ptr<Platform> make_measured(std::vector<Format> formats,
                                        int reps) {
  return std::make_unique<Measured>(std::move(formats), reps);
}

std::vector<double> measure_spmm_times(const Csr& a,
                                       const std::vector<Format>& formats,
                                       index_t k, int reps) {
  DNNSPMV_CHECK(!formats.empty() && k >= 1 && reps >= 1);
  std::vector<double> times;
  times.reserve(formats.size());
  std::vector<double> x(static_cast<std::size_t>(a.cols) * k, 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.rows) * k, 0.0);
  for (Format f : formats) {
    auto m = AnyFormatMatrix::convert(a, f);
    if (!m) {
      times.push_back(kInf);
      continue;
    }
    times.push_back(time_kernel([&] { m->spmm(x, y, k); }, 1, reps));
  }
  return times;
}

}  // namespace dnnspmv
