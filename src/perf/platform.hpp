// Platforms: things that can tell you how fast SpMV runs per format.
//
// The paper labels matrices by timing SpMV on three testbeds (Table 1).
// Offline we provide two Platform kinds:
//
//  * MeasuredPlatform — times this library's real OpenMP kernels on the
//    host machine. Ground truth, but slow to label a large corpus with.
//  * Analytic platforms — calibrated roofline-style cost models
//    parameterized by Table 1's machine descriptors. They reproduce the
//    property the paper's experiments need: *different machines produce
//    different label distributions for the same corpus* (the basis of the
//    §6 transfer-learning study), at zero measurement cost.
//
// Analytic times carry a small deterministic pseudo-noise term derived from
// the matrix structure, mimicking real measurement jitter so labels near
// format crossovers are noisy exactly as in the paper's data.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/format.hpp"
#include "sparse/stats.hpp"

namespace dnnspmv {

class Platform {
 public:
  virtual ~Platform() = default;

  virtual std::string name() const = 0;

  /// Candidate formats on this platform, in label order.
  virtual const std::vector<Format>& formats() const = 0;

  /// Seconds per SpMV for each candidate format (+inf where the format
  /// refuses the matrix, e.g. DIA padding blow-up).
  virtual std::vector<double> spmv_times(const Csr& a) const = 0;
};

/// Machine descriptor (paper Table 1).
struct MachineParams {
  std::string name;
  double bandwidth_gbps = 100.0;   // sustained memory bandwidth
  double freq_ghz = 2.4;
  int cores = 24;
  double cache_mb = 30.0;          // last-level cache
  double flops_per_cycle = 8.0;    // per core, double precision
  std::uint64_t noise_seed = 1;
  double noise = 0.04;             // relative measurement jitter
};

/// The three testbeds of Table 1.
MachineParams intel_xeon_params();   // Xeon E5-4603-like
MachineParams amd_a8_params();       // A8-7600-like
MachineParams titan_x_params();      // GeForce TITAN X-like

/// CPU cost model over the SMATLib format set {COO, CSR, DIA, ELL}.
std::unique_ptr<Platform> make_analytic_cpu(const MachineParams& p);

/// GPU cost model over the cuSPARSE+CSR5 set {CSR, ELL, HYB, BSR, CSR5, COO}.
std::unique_ptr<Platform> make_analytic_gpu(const MachineParams& p);

/// Times the library's real kernels on the host over `formats`.
std::unique_ptr<Platform> make_measured(std::vector<Format> formats,
                                        int reps = 5);

/// Seconds per SpMM (Y[rows×k] = A·X) for each format, measured on the
/// host's real kernels (+inf where conversion refuses the matrix). SpMM has
/// no analytic model: the op exists to be *measured*, because its winners
/// diverge from the SpMV cost models' (DESIGN.md §14).
std::vector<double> measure_spmm_times(const Csr& a,
                                       const std::vector<Format>& formats,
                                       index_t k, int reps = 5);

}  // namespace dnnspmv
