#include "perf/labels.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "sparse/spmv.hpp"

namespace dnnspmv {

std::int32_t best_format_index(const std::vector<double>& times) {
  DNNSPMV_CHECK(!times.empty());
  std::int32_t best = -1;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (!std::isfinite(times[i])) continue;
    if (best < 0 || times[i] < times[static_cast<std::size_t>(best)])
      best = static_cast<std::int32_t>(i);
  }
  DNNSPMV_CHECK_MSG(best >= 0, "no feasible format");
  return best;
}

std::vector<LabeledMatrix> collect_labels(
    const std::vector<CorpusEntry>& corpus, const Platform& platform) {
  std::vector<LabeledMatrix> out;
  out.reserve(corpus.size());
  for (const CorpusEntry& e : corpus) {
    LabeledMatrix lm;
    lm.matrix = &e.matrix;
    lm.gen_class = e.gen_class;
    lm.format_times = platform.spmv_times(e.matrix);
    lm.label = best_format_index(lm.format_times);
    out.push_back(std::move(lm));
  }
  return out;
}

std::vector<LabeledMatrix> collect_labels_spmm(
    const std::vector<CorpusEntry>& corpus,
    const std::vector<Format>& formats, index_t spmm_cols, int reps) {
  DNNSPMV_CHECK(spmm_cols >= 1);
  std::vector<LabeledMatrix> out;
  out.reserve(corpus.size());
  for (const CorpusEntry& e : corpus) {
    LabeledMatrix lm;
    lm.matrix = &e.matrix;
    lm.gen_class = e.gen_class;
    lm.op = SpOp::kSpmm;
    lm.spmm_cols = spmm_cols;
    lm.format_times = measure_spmm_times(e.matrix, formats, spmm_cols, reps);
    lm.label = best_format_index(lm.format_times);
    out.push_back(std::move(lm));
  }
  return out;
}

std::vector<LabeledMatrix> collect_labels_amortized(
    const std::vector<CorpusEntry>& corpus, const Platform& platform,
    std::int64_t expected_iterations) {
  DNNSPMV_CHECK(expected_iterations > 0);
  std::vector<LabeledMatrix> out = collect_labels(corpus, platform);
  const auto& formats = platform.formats();
  for (LabeledMatrix& lm : out) {
    for (std::size_t f = 0; f < formats.size(); ++f) {
      if (!std::isfinite(lm.format_times[f])) continue;
      Timer t;
      const auto converted = AnyFormatMatrix::convert(*lm.matrix, formats[f]);
      const double conv = t.seconds();
      if (!converted) continue;  // platform already priced it as feasible
      lm.format_times[f] +=
          conv / static_cast<double>(expected_iterations);
    }
    lm.label = best_format_index(lm.format_times);
  }
  return out;
}

}  // namespace dnnspmv
