// Label collection: step 1 of the paper's construction pipeline (Figure 3).
// For every corpus matrix, obtain per-format SpMV times from a Platform and
// record the argmin format as the training label.
#pragma once

#include <vector>

#include "gen/corpus.hpp"
#include "perf/platform.hpp"

namespace dnnspmv {

struct LabeledMatrix {
  const Csr* matrix = nullptr;        // borrowed from the corpus
  GenClass gen_class = GenClass::kDerived;
  std::vector<double> format_times;   // aligned with platform.formats()
  std::int32_t label = 0;             // argmin index
  SpOp op = SpOp::kSpmv;              // which kernel the times measure
  index_t spmm_cols = 0;              // K for op == kSpmm, 0 for SpMV
};

/// Index of the fastest finite time; ties break toward the lower index.
std::int32_t best_format_index(const std::vector<double>& times);

/// Labels the whole corpus on `platform`.
std::vector<LabeledMatrix> collect_labels(
    const std::vector<CorpusEntry>& corpus, const Platform& platform);

/// On-the-fly labelling (paper §7.6): when matrices are generated and
/// consumed within one execution, the conversion cost must be charged to
/// the format, amortized over the expected number of SpMV calls. The
/// effective per-iteration time becomes
///     t_fmt + conversion_seconds(fmt) / expected_iterations,
/// with conversion measured by really converting with this library. With
/// few expected iterations the labels shift toward cheap-to-build formats
/// (COO/CSR); as iterations grow they converge to collect_labels.
std::vector<LabeledMatrix> collect_labels_amortized(
    const std::vector<CorpusEntry>& corpus, const Platform& platform,
    std::int64_t expected_iterations);

/// Labels the corpus for SpMM with K = `spmm_cols` dense columns by timing
/// the host's real kernels over `formats`. Labels are keyed by
/// (matrix, op, K): the same matrix gets independent SpMV and SpMM labels,
/// and they disagree often enough to justify the op-aware selector head.
std::vector<LabeledMatrix> collect_labels_spmm(
    const std::vector<CorpusEntry>& corpus,
    const std::vector<Format>& formats, index_t spmm_cols, int reps = 3);

}  // namespace dnnspmv
