// Binary dataset container for labelled training samples.
//
// A Dataset stores, per sample, the normalized input representations (a
// fixed number of equally-shaped tensors — e.g. row histogram + column
// histogram), the hand-crafted feature vector for the DT baseline, the
// per-format measured/modelled SpMV times, and the label (best format id).
// The on-disk layout is a flat little-endian dump, the role the paper's
// .npz files play in the artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/format.hpp"
#include "tensor/tensor.hpp"

namespace dnnspmv {

struct Sample {
  std::vector<Tensor> inputs;        // one per CNN source
  std::vector<double> features;      // DT feature vector
  std::vector<double> format_times;  // seconds per candidate format (inf =
                                     // format refused the matrix)
  std::int32_t label = 0;            // index into the candidate format list
  std::int32_t gen_class = -1;       // generator class tag (analysis only)
};

struct Dataset {
  std::vector<Format> candidates;  // the format list labels index into
  std::vector<Sample> samples;

  std::size_t size() const { return samples.size(); }

  /// Per-class sample counts ("Ground Truth" column of Tables 2/3).
  std::vector<std::int64_t> label_histogram() const;

  void save(const std::string& path) const;
  static Dataset load(const std::string& path);

  /// Index-based subset (for cross-validation folds).
  Dataset subset(const std::vector<std::int32_t>& indices) const;
};

}  // namespace dnnspmv
