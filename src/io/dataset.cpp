#include "io/dataset.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace dnnspmv {
namespace {

constexpr char kMagic[8] = {'D', 'S', 'P', 'M', 'V', 'D', 'S', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DNNSPMV_CHECK_MSG(is.good(), "truncated dataset file");
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_pod(os, static_cast<std::uint32_t>(t.rank()));
  for (auto d : t.shape()) write_pod(os, d);
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  std::uint32_t rank = 0;
  read_pod(is, rank);
  std::vector<std::int64_t> shape(rank);
  for (auto& d : shape) read_pod(is, d);
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  DNNSPMV_CHECK_MSG(is.good(), "truncated dataset tensor");
  return t;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  std::uint64_t n = 0;
  read_pod(is, n);
  std::vector<T> v(static_cast<std::size_t>(n));
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  DNNSPMV_CHECK_MSG(is.good(), "truncated dataset vector");
  return v;
}

}  // namespace

std::vector<std::int64_t> Dataset::label_histogram() const {
  std::vector<std::int64_t> h(candidates.size(), 0);
  for (const Sample& s : samples) {
    DNNSPMV_CHECK(s.label >= 0 &&
                  s.label < static_cast<std::int32_t>(candidates.size()));
    ++h[static_cast<std::size_t>(s.label)];
  }
  return h;
}

void Dataset::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  DNNSPMV_CHECK_MSG(os.is_open(), "cannot open " << path << " for write");
  os.write(kMagic, sizeof(kMagic));
  std::vector<std::int32_t> fm;
  fm.reserve(candidates.size());
  for (Format f : candidates) fm.push_back(static_cast<std::int32_t>(f));
  write_vec(os, fm);
  write_pod(os, static_cast<std::uint64_t>(samples.size()));
  for (const Sample& s : samples) {
    write_pod(os, static_cast<std::uint32_t>(s.inputs.size()));
    for (const Tensor& t : s.inputs) write_tensor(os, t);
    write_vec(os, s.features);
    write_vec(os, s.format_times);
    write_pod(os, s.label);
    write_pod(os, s.gen_class);
  }
  DNNSPMV_CHECK_MSG(os.good(), "dataset write failed");
}

Dataset Dataset::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DNNSPMV_CHECK_MSG(is.is_open(), "cannot open " << path);
  char magic[8];
  is.read(magic, sizeof(magic));
  DNNSPMV_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, 8) == 0,
                    "bad dataset magic in " << path);
  Dataset ds;
  for (std::int32_t f : read_vec<std::int32_t>(is))
    ds.candidates.push_back(static_cast<Format>(f));
  std::uint64_t n = 0;
  read_pod(is, n);
  ds.samples.resize(static_cast<std::size_t>(n));
  for (Sample& s : ds.samples) {
    std::uint32_t ninputs = 0;
    read_pod(is, ninputs);
    s.inputs.reserve(ninputs);
    for (std::uint32_t i = 0; i < ninputs; ++i)
      s.inputs.push_back(read_tensor(is));
    s.features = read_vec<double>(is);
    s.format_times = read_vec<double>(is);
    read_pod(is, s.label);
    read_pod(is, s.gen_class);
  }
  return ds;
}

Dataset Dataset::subset(const std::vector<std::int32_t>& indices) const {
  Dataset out;
  out.candidates = candidates;
  out.samples.reserve(indices.size());
  for (std::int32_t i : indices) {
    DNNSPMV_CHECK(i >= 0 && static_cast<std::size_t>(i) < samples.size());
    out.samples.push_back(samples[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace dnnspmv
