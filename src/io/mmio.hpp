// Matrix Market I/O (coordinate format).
//
// Supports the subset SuiteSparse matrices use for SpMV studies: real /
// integer / pattern fields, general / symmetric / skew-symmetric symmetry.
// Pattern entries get value 1.0; symmetric entries are mirrored.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace dnnspmv {

Csr read_matrix_market(std::istream& is);
Csr read_matrix_market_file(const std::string& path);

void write_matrix_market(std::ostream& os, const Csr& a);
void write_matrix_market_file(const std::string& path, const Csr& a);

}  // namespace dnnspmv
