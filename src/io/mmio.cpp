#include "io/mmio.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace dnnspmv {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Parse failures carry errc::parse_error plus the 1-based line of the
// *input* where parsing stopped, so a bad entry in a million-line .mtx
// file is findable without a debugger.
[[noreturn]] void fail_parse(std::int64_t line_no, const std::string& what) {
  throw DnnspmvError(errc::parse_error,
                     "MatrixMarket parse error at line " +
                         std::to_string(line_no) + ": " + what);
}

}  // namespace

Csr read_matrix_market(std::istream& is) {
  std::string line;
  std::int64_t line_no = 0;
  if (!std::getline(is, line)) fail_parse(1, "empty MatrixMarket stream");
  ++line_no;
  std::istringstream header(line);
  std::string banner, object, fmt, field, symmetry;
  header >> banner >> object >> fmt >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    fail_parse(line_no, "missing MatrixMarket banner");
  object = lower(object);
  fmt = lower(fmt);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix") fail_parse(line_no, "unsupported object: " + object);
  if (fmt != "coordinate")
    fail_parse(line_no, "only coordinate format supported");
  if (field != "real" && field != "integer" && field != "pattern")
    fail_parse(line_no, "unsupported field: " + field);
  if (symmetry != "general" && symmetry != "symmetric" &&
      symmetry != "skew-symmetric")
    fail_parse(line_no, "unsupported symmetry: " + symmetry);
  const bool pattern = field == "pattern";
  const bool sym = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";

  // Skip comments; first non-comment line is the size line.
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  std::int64_t rows = 0, cols = 0, entries = 0;
  size_line >> rows >> cols >> entries;
  if (!(rows > 0 && cols > 0 && entries >= 0))
    fail_parse(line_no, "bad size line: '" + line + "'");

  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(entries) * (sym || skew ? 2 : 1));
  for (std::int64_t k = 0; k < entries; ++k) {
    if (!std::getline(is, line))
      fail_parse(line_no, "truncated data: expected " +
                              std::to_string(entries) + " entries, got " +
                              std::to_string(k));
    ++line_no;
    std::istringstream e(line);
    std::int64_t r = 0, c = 0;
    double v = 1.0;
    e >> r >> c;
    if (!pattern) e >> v;
    if (e.fail()) fail_parse(line_no, "unparseable entry: '" + line + "'");
    if (!(r >= 1 && r <= rows && c >= 1 && c <= cols))
      fail_parse(line_no, "entry (" + std::to_string(r) + "," +
                              std::to_string(c) + ") out of bounds for " +
                              std::to_string(rows) + "x" +
                              std::to_string(cols));
    const auto ri = static_cast<index_t>(r - 1);
    const auto ci = static_cast<index_t>(c - 1);
    ts.push_back({ri, ci, v});
    if ((sym || skew) && ri != ci) ts.push_back({ci, ri, skew ? -v : v});
  }
  return csr_from_triplets(static_cast<index_t>(rows),
                           static_cast<index_t>(cols), std::move(ts));
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream is(path);
  DNNSPMV_CHECK_ERRC(is.is_open(), errc::io_error, "cannot open " << path);
  try {
    return read_matrix_market(is);
  } catch (const DnnspmvError& e) {
    // Re-tag with the path so the message is self-contained:
    // "<path>: MatrixMarket parse error at line N: ...".
    throw DnnspmvError(e.code(), path + ": " + e.what());
  }
}

void write_matrix_market(std::ostream& os, const Csr& a) {
  os.precision(17);  // round-trip exact doubles
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << a.rows << ' ' << a.cols << ' ' << a.nnz() << '\n';
  for (index_t r = 0; r < a.rows; ++r)
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j)
      os << (r + 1) << ' ' << (a.idx[j] + 1) << ' ' << a.val[j] << '\n';
  DNNSPMV_CHECK_ERRC(os.good(), errc::io_error, "MatrixMarket write failed");
}

void write_matrix_market_file(const std::string& path, const Csr& a) {
  std::ofstream os(path);
  DNNSPMV_CHECK_ERRC(os.is_open(), errc::io_error,
                     "cannot open " << path << " for write");
  write_matrix_market(os, a);
}

}  // namespace dnnspmv
