#include "io/mmio.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace dnnspmv {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Csr read_matrix_market(std::istream& is) {
  std::string line;
  DNNSPMV_CHECK_MSG(std::getline(is, line), "empty MatrixMarket stream");
  std::istringstream header(line);
  std::string banner, object, fmt, field, symmetry;
  header >> banner >> object >> fmt >> field >> symmetry;
  DNNSPMV_CHECK_MSG(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  object = lower(object);
  fmt = lower(fmt);
  field = lower(field);
  symmetry = lower(symmetry);
  DNNSPMV_CHECK_MSG(object == "matrix", "unsupported object: " << object);
  DNNSPMV_CHECK_MSG(fmt == "coordinate", "only coordinate format supported");
  DNNSPMV_CHECK_MSG(field == "real" || field == "integer" ||
                        field == "pattern",
                    "unsupported field: " << field);
  DNNSPMV_CHECK_MSG(symmetry == "general" || symmetry == "symmetric" ||
                        symmetry == "skew-symmetric",
                    "unsupported symmetry: " << symmetry);
  const bool pattern = field == "pattern";
  const bool sym = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";

  // Skip comments; first non-comment line is the size line.
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  std::int64_t rows = 0, cols = 0, entries = 0;
  size_line >> rows >> cols >> entries;
  DNNSPMV_CHECK_MSG(rows > 0 && cols > 0 && entries >= 0,
                    "bad MatrixMarket size line: " << line);

  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(entries) * (sym || skew ? 2 : 1));
  for (std::int64_t k = 0; k < entries; ++k) {
    DNNSPMV_CHECK_MSG(std::getline(is, line),
                      "truncated MatrixMarket data at entry " << k);
    std::istringstream e(line);
    std::int64_t r = 0, c = 0;
    double v = 1.0;
    e >> r >> c;
    if (!pattern) e >> v;
    DNNSPMV_CHECK_MSG(r >= 1 && r <= rows && c >= 1 && c <= cols,
                      "entry (" << r << ',' << c << ") out of bounds");
    const auto ri = static_cast<index_t>(r - 1);
    const auto ci = static_cast<index_t>(c - 1);
    ts.push_back({ri, ci, v});
    if ((sym || skew) && ri != ci) ts.push_back({ci, ri, skew ? -v : v});
  }
  return csr_from_triplets(static_cast<index_t>(rows),
                           static_cast<index_t>(cols), std::move(ts));
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream is(path);
  DNNSPMV_CHECK_MSG(is.is_open(), "cannot open " << path);
  return read_matrix_market(is);
}

void write_matrix_market(std::ostream& os, const Csr& a) {
  os.precision(17);  // round-trip exact doubles
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << a.rows << ' ' << a.cols << ' ' << a.nnz() << '\n';
  for (index_t r = 0; r < a.rows; ++r)
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j)
      os << (r + 1) << ' ' << (a.idx[j] + 1) << ' ' << a.val[j] << '\n';
  DNNSPMV_CHECK_MSG(os.good(), "MatrixMarket write failed");
}

void write_matrix_market_file(const std::string& path, const Csr& a) {
  std::ofstream os(path);
  DNNSPMV_CHECK_MSG(os.is_open(), "cannot open " << path << " for write");
  write_matrix_market(os, a);
}

}  // namespace dnnspmv
