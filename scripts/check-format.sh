#!/usr/bin/env bash
# Format gate over every tracked C++ file.
#
#   scripts/check-format.sh          # report drift, exit 1 if any
#   scripts/check-format.sh --fix    # rewrite files in place
#
# CI pins CLANG_FORMAT=clang-format-18; locally any clang-format works for
# --fix, but only version 18 is guaranteed to agree with the CI verdict.
# When no clang-format binary is available at all, the check is skipped
# (exit 0) so developer machines without LLVM tooling aren't blocked —
# the CI format job remains the gate of record.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check-format: '$CLANG_FORMAT' not found; skipping (CI enforces this gate)" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cpp' '*.hpp' '*.h' '*.cc')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "check-format: no C++ files tracked" >&2
  exit 0
fi

if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "check-format: reformatted ${#files[@]} files"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done

if [[ $bad -ne 0 ]]; then
  echo "" >&2
  echo "check-format: drift detected — run 'scripts/check-format.sh --fix'" >&2
  exit 1
fi
echo "check-format: ${#files[@]} files clean ($($CLANG_FORMAT --version))"
