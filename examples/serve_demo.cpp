// Serving demo: train a selector, stand up a SelectionService — or, with
// --replicas N, a sharded ReplicaRouter — and hit it from several client
// threads, then read the metrics block.
//
//   ./serve_demo [--clients 4] [--requests 400] [--replicas 0]
//                [--op spmv] [--online 0] [--quantize 0]
//                [--trace trace.json]
//
// --replicas 0 (default) serves through a single SelectionService; N >= 1
// builds a ReplicaRouter with N replicas (consistent-hash sharding, NUMA-
// aware worker pinning, hedged re-dispatch) and reports per-replica
// hit-rate/depth plus the router's hedge counters at exit.
//
// --op spmm trains the selector's second head on measured SpMM labels
// (K = 32 dense columns) and serves every request as an SpMM query: same
// service, same cache, op-scoped keys — the exit stats show the traffic
// under spmm_requests instead of spmv_requests.
//
// --online 1 closes the learning loop (single-service mode): the service
// publishes sampled cache misses to a FeedbackCollector — here probed
// against a *different* analytic platform than the one the selector was
// trained on, so the measured labels have drifted — and a background
// OnlineTrainer fine-tunes and publishes new versions to the service's
// ModelRegistry, which workers hot-swap to between micro-batches. The
// exit block reports versions published, hot swaps observed, and feedback
// stream accounting.
//
// --quantize 1 calibrates the trained CNN and serves int8 weights on the
// cold-miss path (the same per-channel scheme bench_overhead gates at
// >= 2x forward speedup); online publishes stay quantized too.
//
// With --trace, span tracing is enabled for the serving phase and a
// chrome://tracing / Perfetto-loadable dump of every request's pipeline
// (fingerprint → cache probe → queue → batch forward → fulfill) is
// written to the given path, plus a flat JSON export of the registry.
#include <cstdio>
#include <thread>

#include "common/cli.hpp"
#include "core/online.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "perf/labels.hpp"
#include "serve/feedback.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"

using namespace dnnspmv;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const auto requests =
      static_cast<std::size_t>(cli.get_int("requests", 400));
  const int replicas = static_cast<int>(cli.get_int("replicas", 0));
  SpOp op = op_from_name(cli.get_string("op", "spmv"));
  const bool online = cli.get_int("online", 0) != 0;
  const bool quantize = cli.get_int("quantize", 0) != 0;
  const std::string trace_path = cli.get_string("trace", "");
  cli.check_unused();
  if (online && replicas > 0) {
    std::printf("--online demos the single-service loop; ignoring "
                "--replicas %d\n", replicas);
  }
  if (online && op == SpOp::kSpmm) {
    // The feedback probe measures SpMV labels, and the service only
    // publishes feedback for SpMV misses — an all-SpMM online demo would
    // just idle the trainer.
    std::printf("--online fine-tunes on SpMV feedback; ignoring "
                "--op spmm\n");
    op = SpOp::kSpmv;
  }

  // 1. A small trained selector (the usual offline pipeline).
  std::printf("training selector...\n");
  CorpusSpec spec;
  spec.count = 120;
  spec.min_dim = 48;
  spec.max_dim = 192;
  const auto corpus = build_corpus(spec);
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const auto labeled = collect_labels(corpus, *platform);

  SelectorOptions sopts;
  sopts.rep_rows = 16;
  sopts.rep_bins = 8;
  sopts.train.epochs = 8;
  sopts.quantize = quantize;
  FormatSelector selector(sopts);
  selector.fit(labeled, platform->formats());
  if (op == SpOp::kSpmm) {
    std::printf("labelling SpMM at K=%d on the host kernels...\n",
                static_cast<int>(sopts.spmm_cols));
    selector.fit_spmm(collect_labels_spmm(corpus, platform->formats(),
                                          sopts.spmm_cols, /*reps=*/1));
  }
  if (selector.quantized())
    std::printf("selector quantized: cold misses run the int8 forward\n");

  // 2. The serving layer: sharded LRU cache in front, micro-batching
  //    workers behind a bounded queue — one service, or a router fanning
  //    the keyspace over N replicas of that whole stack.
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 16;
  opts.cache_capacity = 1024;
  std::unique_ptr<SelectionService> service;
  std::unique_ptr<ReplicaRouter> router;
  std::unique_ptr<ModelRegistry> registry;
  std::unique_ptr<FeedbackCollector> feedback;
  std::unique_ptr<OnlineTrainer> trainer;
  const auto drifted = make_analytic_cpu(amd_a8_params());
  if (online) {
    // The learning loop: sampled misses are probed against a platform the
    // selector was NOT trained on (drifted labels), the trainer fine-tunes
    // in the background, and workers hot-swap to each published version.
    registry = std::make_unique<ModelRegistry>(selector.clone());
    feedback = std::make_unique<FeedbackCollector>(
        FeedbackOptions{.capacity = 256, .sample_every = 1,
                        .measure_reps = 1});
    opts.feedback = feedback.get();
    opts.feedback_probe = [&drifted](const Csr& m) {
      return drifted->spmv_times(m);
    };
    service = std::make_unique<SelectionService>(*registry, opts);
    OnlineTrainerOptions topts;
    topts.min_batch = 32;
    topts.poll_interval_ms = 20;
    trainer = std::make_unique<OnlineTrainer>(*registry, *feedback, topts);
    trainer->start();
    std::printf("online loop armed: feedback probe measures a drifted "
                "platform, trainer polls every %lld ms\n",
                static_cast<long long>(topts.poll_interval_ms));
  } else if (replicas > 0) {
    RouterOptions ropts;
    ropts.replicas = replicas;
    ropts.service = opts;
    router = std::make_unique<ReplicaRouter>(selector, ropts);
    std::printf("router: %d replicas, hedge budget %lld us", replicas,
                static_cast<long long>(router->hedge_budget_us()));
    for (std::size_t r = 0; r < router->placement().size(); ++r) {
      const auto& g = router->placement()[r];
      std::printf("%s replica %zu -> node %d (%zu cpus)", r == 0 ? ";" : ",",
                  r, g.node, g.cpus.size());
    }
    std::printf("\n");
  } else {
    service = std::make_unique<SelectionService>(selector, opts);
  }
  auto predict = [&](const Csr& m) {
    return router ? router->predict(m, op) : service->predict(m, op);
  };

  // 3. Concurrent clients, each re-querying a shared matrix pool — the
  //    repeated-structure traffic a solver fleet generates.
  std::printf("serving %zu requests from %d clients...\n",
              requests * static_cast<std::size_t>(clients), clients);
  if (!trace_path.empty()) obs::set_enabled(true);  // trace serving only
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (std::size_t i = 0; i < requests; ++i) {
        const auto& m =
            corpus[(static_cast<std::size_t>(c) * 31 + i) % corpus.size()]
                .matrix;
        const Format f = predict(m);
        if (i == 0)
          std::printf("  client %d: first pick = %s\n", c,
                      format_name(f).c_str());
      }
    });
  }
  for (auto& w : workers) w.join();

  if (online) {
    // The poll loop may not have caught the tail of the feedback stream
    // before the clients finished — stop it and flush the backlog into
    // one deterministic final round, then serve a second wave so the hot
    // swap shows up in the serving stats (workers adopt the new version
    // between micro-batches; nothing pauses).
    trainer->stop();
    if (trainer->train_once())
      std::printf("published fine-tuned version %llu; serving second "
                  "wave...\n",
                  static_cast<unsigned long long>(registry->version()));
    // Fresh matrices so the wave misses the cache: a miss is what wakes a
    // worker, and a woken worker is what adopts the new version (cached
    // answers keep flowing from the pinned version until then — that's
    // the no-pause contract, not a bug).
    CorpusSpec wave2 = spec;
    wave2.count = 60;
    wave2.seed = spec.seed + 1;
    for (const CorpusEntry& e : build_corpus(wave2))
      (void)predict(e.matrix);
  }

  // 4. What the metrics block saw.
  if (router) {
    const RouterStats rs = router->snapshot();
    std::printf("\n-- router stats --\n");
    std::printf("requests      %llu\n",
                static_cast<unsigned long long>(rs.requests));
    std::printf("hit rate      %.1f%% (over all replicas)\n",
                100.0 * rs.hit_rate());
    std::printf("hedges        %llu issued, %llu won, %llu misrouted\n",
                static_cast<unsigned long long>(rs.hedges),
                static_cast<unsigned long long>(rs.hedge_won),
                static_cast<unsigned long long>(rs.misrouted));
    std::printf("hedge budget  %lld us\n",
                static_cast<long long>(rs.hedge_budget_us));
    std::printf("availability  %.1f%%\n", 100.0 * rs.availability());
    for (std::size_t r = 0; r < rs.replica.size(); ++r) {
      const ServiceStats& s = rs.replica[r];
      std::printf("  replica %zu: %llu requests, %.1f%% hits, "
                  "%llu degraded, depth %zu\n",
                  r, static_cast<unsigned long long>(s.requests),
                  100.0 * s.hit_rate(),
                  static_cast<unsigned long long>(s.degraded),
                  router->replica(r).queue_depth());
    }
  } else {
    const ServiceStats s = service->snapshot();
    std::printf("\n-- service stats --\n");
    std::printf("requests      %llu (%llu spmv, %llu spmm)\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.spmv_requests),
                static_cast<unsigned long long>(s.spmm_requests));
    std::printf("cache hits    %llu (%.1f%%)\n",
                static_cast<unsigned long long>(s.cache_hits),
                100.0 * s.hit_rate());
    std::printf("batches       %llu (mean size %.2f, max %llu)\n",
                static_cast<unsigned long long>(s.batches), s.mean_batch(),
                static_cast<unsigned long long>(s.max_batch));
    std::printf("latency p50   %.0f us\n", 1e6 * s.latency_quantile(0.5));
    std::printf("latency p95   %.0f us\n", 1e6 * s.latency_quantile(0.95));
    std::printf("rep build     p50 %.0f us, mean %.0f us over %llu misses\n",
                s.rep_build.quantile(0.5), s.rep_build.mean(),
                static_cast<unsigned long long>(s.rep_build.count));
    std::printf("cache entries %llu\n",
                static_cast<unsigned long long>(s.cache_entries));
    if (online) {
      trainer->stop();  // finish any round in flight before reading stats
      std::printf("\n-- online loop --\n");
      std::printf("feedback      %llu samples published, %llu dropped\n",
                  static_cast<unsigned long long>(feedback->published()),
                  static_cast<unsigned long long>(feedback->dropped()));
      std::printf("trainer       %llu rounds, %llu samples consumed, "
                  "%llu versions published\n",
                  static_cast<unsigned long long>(trainer->rounds()),
                  static_cast<unsigned long long>(trainer->consumed()),
                  static_cast<unsigned long long>(trainer->published()));
      std::printf("model         serving version %llu after %llu hot "
                  "swap(s); registry at version %llu\n",
                  static_cast<unsigned long long>(s.model_version),
                  static_cast<unsigned long long>(s.model_swaps),
                  static_cast<unsigned long long>(registry->version()));
    }
  }

  // 5. Optional observability dump: the spans as a chrome://tracing
  //    timeline, and the full registry (this service + nn + spmv) as JSON.
  if (!trace_path.empty()) {
    obs::set_enabled(false);
    const std::int64_t n = obs::write_chrome_trace_file(trace_path);
    std::printf("\nwrote %lld trace events to %s "
                "(open in chrome://tracing or https://ui.perfetto.dev)\n",
                static_cast<long long>(n), trace_path.c_str());
    const std::string metrics_path = trace_path + ".metrics.json";
    obs::write_text_file(metrics_path,
                         obs::metrics_to_json(
                             obs::MetricsRegistry::global().snapshot()));
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
  return 0;
}
