// Cross-architecture migration walkthrough (paper §6).
//
// Train a selector on one machine's labels, then port it to a different
// machine with "top evolvement": freeze the convolutional towers, collect a
// *small* number of labels on the new machine, retrain only the head.
#include <cstdio>

#include "common/cli.hpp"
#include "core/selector.hpp"

using namespace dnnspmv;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 500);
  const std::int64_t retrain_n = cli.get_int("retrain-n", 80);
  const int epochs = static_cast<int>(cli.get_int("epochs", 12));
  cli.check_unused();

  CorpusSpec spec;
  spec.count = n;
  spec.min_dim = 128;
  spec.max_dim = 1024;
  const auto corpus = build_corpus(spec);

  const auto intel = make_analytic_cpu(intel_xeon_params());
  const auto amd = make_analytic_cpu(amd_a8_params());

  // Source machine: full label collection + training.
  std::printf("training on %s...\n", intel->name().c_str());
  const auto src_labeled = collect_labels(corpus, *intel);
  SelectorOptions opts;
  opts.mode = RepMode::kHistogram;
  opts.train.epochs = epochs;
  FormatSelector source(opts);
  source.fit(src_labeled, intel->formats());

  // Target machine: labels differ — show how much.
  const auto dst_labeled = collect_labels(corpus, *amd);
  std::int64_t moved = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i)
    if (src_labeled[i].label != dst_labeled[i].label) ++moved;
  std::printf("%lld of %lld labels differ on %s\n",
              static_cast<long long>(moved), static_cast<long long>(n),
              amd->name().c_str());

  const Dataset dst_ds =
      build_dataset(dst_labeled, amd->formats(), opts.mode, opts.rep_rows,
                    opts.rep_bins);

  // Accuracy of the un-migrated source model on the target machine.
  auto accuracy_on = [&](FormatSelector& sel, const Dataset& ds) {
    std::int64_t ok = 0;
    for (std::size_t i = 0; i < ds.samples.size(); ++i) {
      const auto pred =
          predict_cnn(sel.net(), ds.subset({static_cast<std::int32_t>(i)}),
                      2, 1);
      if (pred[0] == ds.samples[i].label) ++ok;
    }
    return static_cast<double>(ok) / static_cast<double>(ds.size());
  };
  std::printf("source model on target labels (no retraining): %.3f\n",
              accuracy_on(source, dst_ds));

  // Migrate with a small retraining set collected "on the new machine".
  std::vector<std::int32_t> retrain_idx;
  for (std::int64_t i = 0; i < std::min<std::int64_t>(retrain_n, n); ++i)
    retrain_idx.push_back(static_cast<std::int32_t>(i));
  const Dataset target_train = dst_ds.subset(retrain_idx);
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch = 16;
  FormatSelector migrated =
      source.migrate(MigrationMethod::kTopEvolve, target_train, cfg);
  std::printf("after top evolvement on %lld target labels: %.3f\n",
              static_cast<long long>(retrain_idx.size()),
              accuracy_on(migrated, dst_ds));

  // For contrast: training from scratch on the same small set.
  FormatSelector scratch =
      source.migrate(MigrationMethod::kFromScratch, target_train, cfg);
  std::printf("from-scratch on the same %lld labels:     %.3f\n",
              static_cast<long long>(retrain_idx.size()),
              accuracy_on(scratch, dst_ds));
  return 0;
}
