// Iterative-solver scenario (the paper's motivating workload, §1):
// a conjugate-gradient solve spends thousands of iterations in SpMV, so
// picking the right storage format up front pays for the selection many
// times over (§7.6).
//
// We solve A x = b with CG for an SPD banded system twice — once with the
// default CSR format, once with the selector's pick — and compare the
// end-to-end SpMV time.
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "core/selector.hpp"
#include "sparse/spmv.hpp"

using namespace dnnspmv;

namespace {

/// SPD penta-diagonal system (2-D Poisson-like stencil).
Csr make_spd(index_t n) {
  std::vector<Triplet> ts;
  for (index_t i = 0; i < n; ++i) {
    ts.push_back({i, i, 4.0});
    if (i + 1 < n) {
      ts.push_back({i, i + 1, -1.0});
      ts.push_back({i + 1, i, -1.0});
    }
    if (i + 16 < n) {
      ts.push_back({i, i + 16, -1.0});
      ts.push_back({i + 16, i, -1.0});
    }
  }
  return csr_from_triplets(n, n, std::move(ts));
}

/// CG on an AnyFormatMatrix; returns (iterations, seconds in SpMV).
std::pair<int, double> cg_solve(const AnyFormatMatrix& a, index_t n,
                                int max_iters, double tol) {
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> r = b, p = b, ap(static_cast<std::size_t>(n));
  double rr = 0.0;
  for (double v : r) rr += v * v;
  double spmv_seconds = 0.0;
  int it = 0;
  for (; it < max_iters && std::sqrt(rr) > tol; ++it) {
    Timer t;
    a.spmv(p, ap);
    spmv_seconds += t.seconds();
    double pap = 0.0;
    for (index_t i = 0; i < n; ++i) pap += p[i] * ap[i];
    const double alpha = rr / pap;
    double rr_new = 0.0;
    for (index_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
      rr_new += r[i] * r[i];
    }
    const double beta = rr_new / rr;
    for (index_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
  }
  return {it, spmv_seconds};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<index_t>(cli.get_int("n", 20000));
  const int train_n = static_cast<int>(cli.get_int("train-n", 250));
  const int epochs = static_cast<int>(cli.get_int("epochs", 10));
  cli.check_unused();

  // Train a selector against the host itself — labels are real kernel
  // timings, so the prediction targets *this* machine.
  std::printf("training selector on host-measured labels (%d matrices)...\n",
              train_n);
  CorpusSpec spec;
  spec.count = train_n;
  spec.min_dim = 128;
  spec.max_dim = 1024;
  const auto corpus = build_corpus(spec);
  const auto host = make_measured(cpu_formats(), 5);
  const auto labeled = collect_labels(corpus, *host);
  SelectorOptions opts;
  opts.mode = RepMode::kHistogram;
  opts.train.epochs = epochs;
  FormatSelector selector(opts);
  selector.fit(labeled, host->formats());

  const Csr a = make_spd(n);
  const Format pick = selector.predict(a);
  std::printf("system: %d x %d, nnz=%lld; selector picked %s\n", n, n,
              static_cast<long long>(a.nnz()), format_name(pick).c_str());

  const auto csr_m = AnyFormatMatrix::convert(a, Format::kCsr);
  const auto [it_csr, t_csr] = cg_solve(*csr_m, n, 500, 1e-8);
  if (pick == Format::kCsr) {
    std::printf("selector agrees with the CSR default; CG: %d iters, "
                "%.4f s in SpMV\n", it_csr, t_csr);
    return 0;
  }
  const auto pick_m = AnyFormatMatrix::convert(a, pick);
  if (!pick_m) {
    std::printf("picked format refused the matrix; CSR solve: %d iters, "
                "%.3f s in SpMV\n", it_csr, t_csr);
    return 0;
  }
  const auto [it_pick, t_pick] = cg_solve(*pick_m, n, 500, 1e-8);

  std::printf("CG with CSR : %3d iters, %.4f s in SpMV\n", it_csr, t_csr);
  std::printf("CG with %-4s: %3d iters, %.4f s in SpMV  (%.2fx)\n",
              format_name(pick).c_str(), it_pick, t_pick,
              t_pick > 0 ? t_csr / t_pick : 0.0);
  return 0;
}
