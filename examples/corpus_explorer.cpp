// Corpus explorer: prints, per generator class, the structural statistics
// and which format wins on each platform — a quick view into the dataset
// the selector learns from, and a sanity check of the cost models' class
// preferences (cf. paper Tables 2–3 "Ground Truth" columns).
#include <cstdio>
#include <map>

#include "common/cli.hpp"
#include "core/selector.hpp"
#include "io/mmio.hpp"

using namespace dnnspmv;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 600);
  const std::string mtx = cli.get_string("mtx", "");
  cli.check_unused();

  // Optional: inspect a user-provided MatrixMarket file instead.
  if (!mtx.empty()) {
    const Csr a = read_matrix_market_file(mtx);
    const MatrixStats s = compute_stats(a);
    std::printf("%s: %lldx%lld nnz=%lld density=%.2e\n", mtx.c_str(),
                static_cast<long long>(s.rows),
                static_cast<long long>(s.cols), static_cast<long long>(s.nnz),
                s.density);
    std::printf("row nnz mean=%.1f sd=%.1f max=%lld; ndiags=%lld "
                "dia_fill=%.2f ell_fill=%.2f bsr_fill=%.2f\n",
                s.row_nnz_mean, s.row_nnz_sd,
                static_cast<long long>(s.row_nnz_max),
                static_cast<long long>(s.ndiags), s.dia_fill, s.ell_fill,
                s.bsr_fill);
    const auto host = make_measured(cpu_formats(), 5);
    const auto times = host->spmv_times(a);
    std::printf("host-measured SpMV times:\n");
    for (std::size_t f = 0; f < times.size(); ++f)
      std::printf("  %-5s %.3g us\n",
                  format_name(cpu_formats()[f]).c_str(), times[f] * 1e6);
    return 0;
  }

  CorpusSpec spec;
  spec.count = n;
  spec.min_dim = 128;
  spec.max_dim = 1024;
  const auto corpus = build_corpus(spec);
  const auto intel = make_analytic_cpu(intel_xeon_params());
  const auto gpu = make_analytic_gpu(titan_x_params());
  const auto cpu_labels = collect_labels(corpus, *intel);
  const auto gpu_labels = collect_labels(corpus, *gpu);

  struct ClassRow {
    std::int64_t count = 0;
    double nnz = 0.0, density = 0.0;
    std::map<Format, int> cpu_wins, gpu_wins;
  };
  std::map<GenClass, ClassRow> rows;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    ClassRow& r = rows[corpus[i].gen_class];
    const MatrixStats s = compute_stats(corpus[i].matrix);
    ++r.count;
    r.nnz += static_cast<double>(s.nnz);
    r.density += s.density;
    ++r.cpu_wins[intel->formats()[static_cast<std::size_t>(
        cpu_labels[i].label)]];
    ++r.gpu_wins[gpu->formats()[static_cast<std::size_t>(
        gpu_labels[i].label)]];
  }

  std::printf("%-14s %6s %10s %10s  %-18s %-18s\n", "class", "count",
              "avg nnz", "density", "CPU winner", "GPU winner");
  for (const auto& [cls, r] : rows) {
    auto top = [](const std::map<Format, int>& wins) {
      Format best = Format::kCsr;
      int c = -1;
      for (const auto& [f, k] : wins)
        if (k > c) {
          c = k;
          best = f;
        }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%s (%d)", format_name(best).c_str(),
                    c);
      return std::string(buf);
    };
    std::printf("%-14s %6lld %10.0f %10.2e  %-18s %-18s\n",
                gen_class_name(cls).c_str(), static_cast<long long>(r.count),
                r.nnz / static_cast<double>(r.count),
                r.density / static_cast<double>(r.count),
                top(r.cpu_wins).c_str(), top(r.gpu_wins).c_str());
  }
  return 0;
}
