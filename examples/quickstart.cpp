// Quickstart: train a format selector on a small labelled corpus, predict
// the best SpMV format for a new matrix, and run SpMV in that format.
//
//   ./quickstart [--n 300] [--epochs 10]
#include <cstdio>

#include "common/cli.hpp"
#include "core/selector.hpp"
#include "sparse/spmv.hpp"

using namespace dnnspmv;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 300);
  const int epochs = static_cast<int>(cli.get_int("epochs", 10));
  cli.check_unused();

  // 1. A corpus of training matrices and a platform that labels them by
  //    timing SpMV per format (here: the Intel-Xeon-like cost model; use
  //    make_measured() to label with real kernel timings on this host).
  std::printf("building corpus of %lld matrices...\n",
              static_cast<long long>(n));
  CorpusSpec spec;
  spec.count = n;
  spec.min_dim = 128;
  spec.max_dim = 512;
  const auto corpus = build_corpus(spec);
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const auto labeled = collect_labels(corpus, *platform);

  // 2. Train the CNN selector (histogram representation, late merging).
  SelectorOptions opts;
  opts.mode = RepMode::kHistogram;
  opts.rep_rows = 32;
  opts.rep_bins = 16;
  opts.train.epochs = epochs;
  FormatSelector selector(opts);
  std::printf("training CNN selector (%d epochs)...\n", epochs);
  selector.fit(labeled, platform->formats());

  // 3. Predict the format for a new matrix the selector never saw.
  Rng rng(2024);
  const Csr tri = gen_banded(400, 400, 1, 1.0, rng);       // tridiagonal
  const Csr scattered = gen_powerlaw(400, 400, 8.0, 1.6, rng);
  for (const auto& [name, m] :
       {std::pair<const char*, const Csr*>{"tridiagonal", &tri},
        std::pair<const char*, const Csr*>{"power-law", &scattered}}) {
    const Format f = selector.predict(*m);
    std::printf("predicted format for the %s matrix: %s\n", name,
                format_name(f).c_str());

    // 4. Convert and run SpMV with the chosen format.
    const auto stored = AnyFormatMatrix::convert(*m, f);
    if (!stored) {
      std::printf("  (format refused the matrix; falling back to CSR)\n");
      continue;
    }
    std::vector<double> x(static_cast<std::size_t>(m->cols), 1.0);
    std::vector<double> y(static_cast<std::size_t>(m->rows), 0.0);
    stored->spmv(x, y);
    std::printf("  SpMV done; y[0]=%.3f, storage=%lld bytes (CSR would be "
                "%lld)\n",
                y[0], static_cast<long long>(stored->bytes()),
                static_cast<long long>(m->bytes()));
  }

  // 5. Persist the model for later use.
  selector.save("selector_model.bin");
  std::printf("model saved to selector_model.bin\n");
  return 0;
}
